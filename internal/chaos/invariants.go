// Cross-layer invariant checking: the Checker registers observer hooks on
// core, l2 (via the L2-side Orion's SHM tap), phy and switchsim and
// asserts the properties Slingshot's design promises to preserve across
// arbitrary fault schedules (§5, §6, §8.2):
//
//  1. No TTI regression: the slot indications the L2 accepts are strictly
//     monotone per cell.
//  2. ≤3 dropped TTIs per failover, and none otherwise (§8.2).
//  3. HARQ soft-buffer conservation: the PHY never chase-combines
//     receptions of two different transport blocks into one buffer.
//  4. RLC in-order delivery per bearer (sequence-stamped app packets).
//  5. Switch migration takes effect only at the armed TTI boundary, and
//     uplink steering always matches the current serving PHY.
//  6. A UE never silently detaches while Slingshot is protecting it.
package chaos

import (
	"fmt"

	"slingshot/internal/core"
	"slingshot/internal/fapi"
	"slingshot/internal/fronthaul"
	"slingshot/internal/orion"
	"slingshot/internal/phy"
	"slingshot/internal/sim"
	"slingshot/internal/switchsim"
	"slingshot/internal/trace"
	"slingshot/internal/ue"
)

// Violation is one observed invariant breach.
type Violation struct {
	Invariant string
	At        sim.Time
	Detail    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%.6fs %s: %s", float64(v.At)/float64(sim.Second), v.Invariant, v.Detail)
}

// failoverGapWindow is how long after a failover migration a slot gap of
// up to maxFailoverGap TTIs is tolerated.
const failoverGapWindow = 10 * sim.Millisecond

// maxFailoverGap is the paper's §8.2 bound on dropped TTIs per failover.
const maxFailoverGap = 3

// maxRecorded bounds the retained violation list (Total keeps counting).
const maxRecorded = 64

// flightEvents is how much timeline the flight recorder dumps: the last
// events preceding (and including) the first violation.
const flightEvents = 64

type harqKey struct {
	server uint8
	cell   uint16
	ue     uint16
	proc   uint8
}

// Checker observes a running deployment through registered hooks and
// records invariant violations.
type Checker struct {
	d   *core.Deployment
	eng *sim.Engine

	// Total counts all violations; the recorded list is capped.
	Total      int
	violations []Violation

	// rec is the deployment's trace recorder (nil when tracing is off);
	// base is the counter snapshot taken at Attach so the flight dump can
	// show what moved. flight holds the dump captured at first violation.
	rec    *trace.Recorder
	base   trace.Snapshot
	flight string

	lastSlotInd  map[uint16]uint64
	lastFailover map[uint16]sim.Time
	droppedTTIs  map[uint16]uint64

	harqBuf map[harqKey]uint64

	ruServing map[uint8]uint8

	ulLast, dlLast   map[uint16]uint64
	ulCount, dlCount map[uint16]uint64
}

// Attach wires a checker into a deployment's observer hooks. Call before
// Start. Existing hooks are chained, not replaced.
func Attach(d *core.Deployment) *Checker {
	c := &Checker{
		d:            d,
		eng:          d.Engine,
		lastSlotInd:  make(map[uint16]uint64),
		lastFailover: make(map[uint16]sim.Time),
		droppedTTIs:  make(map[uint16]uint64),
		harqBuf:      make(map[harqKey]uint64),
		ruServing:    make(map[uint8]uint8),
		ulLast:       make(map[uint16]uint64),
		dlLast:       make(map[uint16]uint64),
		ulCount:      make(map[uint16]uint64),
		dlCount:      make(map[uint16]uint64),
		rec:          d.Cfg.Trace,
		base:         d.Cfg.Trace.Metrics().Snapshot(),
	}

	if d.Slingshot {
		c.TapL2()

		innerMig := d.L2Orion.OnMigration
		d.L2Orion.OnMigration = func(ev orion.MigrationEvent) {
			if ev.Failover {
				c.lastFailover[ev.Cell] = c.eng.Now()
			}
			if innerMig != nil {
				innerMig(ev)
			}
		}
	}

	for _, server := range sortedServers(d) {
		p := d.PHYs[server]
		srv := server
		innerDec := p.OnULDecode
		p.OnULDecode = func(cell, ueID uint16, harq uint8, newData bool, tbHash uint64, ok bool) {
			c.onULDecode(srv, cell, ueID, harq, newData, tbHash, ok)
			if innerDec != nil {
				innerDec(cell, ueID, harq, newData, tbHash, ok)
			}
		}
		innerDisc := p.OnSoftDiscard
		p.OnSoftDiscard = func() {
			c.onSoftDiscard(srv)
			if innerDisc != nil {
				innerDisc()
			}
		}
	}

	c.ruServing[uint8(d.Cfg.Cell)] = d.Cfg.PrimaryServer
	for _, spec := range d.Cfg.ExtraCells {
		c.ruServing[uint8(spec.Cell)] = spec.Primary
	}
	innerSwMig := d.Switch.OnMigration
	d.Switch.OnMigration = func(rec switchsim.MigrationRecord) {
		c.onSwitchMigration(rec)
		if innerSwMig != nil {
			innerSwMig(rec)
		}
	}
	innerFwd := d.Switch.OnULForward
	d.Switch.OnULForward = func(ru uint8, slot fronthaul.SlotID, phyID uint8) {
		c.onULForward(ru, phyID)
		if innerFwd != nil {
			innerFwd(ru, slot, phyID)
		}
	}

	for _, id := range sortedUEs(d) {
		u := d.UEs[id]
		uid := id
		innerState := u.OnStateChange
		u.OnStateChange = func(s ue.State) {
			c.onUEState(uid, s)
			if innerState != nil {
				innerState(s)
			}
		}
	}
	return c
}

// TapL2 (re)wraps the L2-side Orion's SHM delivery tap. Must be re-invoked
// after core.UpgradeL2 replaces the tap with the fresh L2's handler.
func (c *Checker) TapL2() {
	inner := c.d.L2Orion.ToL2
	c.d.L2Orion.ToL2 = func(m fapi.Message) {
		c.onL2Message(m)
		if inner != nil {
			inner(m)
		}
	}
}

func (c *Checker) violate(invariant string, format string, args ...any) {
	c.Total++
	if len(c.violations) < maxRecorded {
		c.violations = append(c.violations, Violation{
			Invariant: invariant,
			At:        c.eng.Now(),
			Detail:    fmt.Sprintf(format, args...),
		})
	}
	c.rec.EmitLabeled(trace.KindInvariant, invariant, 0, 0, 0, uint64(c.Total), 0)
	if c.Total == 1 && c.rec != nil {
		// First breach: freeze the timeline that led here. Later breaches
		// keep counting but the dump explains the earliest one — by the
		// time the run ends the ring has long since evicted this window.
		c.flight = c.rec.FlightDump(flightEvents, c.base)
	}
}

// Violations returns the recorded breaches (capped at maxRecorded).
func (c *Checker) Violations() []Violation { return c.violations }

// Flight returns the flight-recorder dump captured at the first violation
// (empty when the run was clean or tracing was off).
func (c *Checker) Flight() string { return c.flight }

// DroppedTTIs returns the total slot-indication gap observed for a cell.
func (c *Checker) DroppedTTIs(cell uint16) uint64 { return c.droppedTTIs[cell] }

// Delivered returns per-UE in-order packet counts (uplink, downlink).
func (c *Checker) Delivered(ueID uint16) (ul, dl uint64) {
	return c.ulCount[ueID], c.dlCount[ueID]
}

// onL2Message observes every FAPI message the L2-side Orion accepts for
// delivery to the L2 (the post-filter view: the standby's responses are
// already dropped).
func (c *Checker) onL2Message(m fapi.Message) {
	if ind, isSlot := m.(*fapi.SlotIndication); isSlot {
		c.observeSlot(ind.CellID, ind.Slot)
	}
}

// observeSlot enforces TTI monotonicity and the §8.2 dropped-TTI bound.
func (c *Checker) observeSlot(cell uint16, slot uint64) {
	last, seen := c.lastSlotInd[cell]
	if seen {
		if slot <= last {
			c.violate("tti-regression", "cell %d slot %d after %d", cell, slot, last)
			return
		}
		if gap := slot - last - 1; gap > 0 {
			c.droppedTTIs[cell] += gap
			lastFo, hadFo := c.lastFailover[cell]
			inWindow := hadFo && c.eng.Now()-lastFo <= failoverGapWindow
			if !inWindow {
				c.violate("dropped-ttis", "cell %d lost %d TTIs (%d→%d) with no failover in flight",
					cell, gap, last, slot)
			} else if gap > maxFailoverGap {
				c.violate("dropped-ttis", "cell %d lost %d TTIs (%d→%d) in failover, >%d (§8.2)",
					cell, gap, last, slot, maxFailoverGap)
			}
		}
	}
	c.lastSlotInd[cell] = slot
}

// onULDecode enforces HARQ soft-buffer conservation on the PHY's uplink
// chase combiner: a retransmission (NewData=false) landing in an active
// buffer must carry the same transport block as the buffer holds.
func (c *Checker) onULDecode(server uint8, cell, ueID uint16, proc uint8, newData bool, tbHash uint64, ok bool) {
	key := harqKey{server: server, cell: cell, ue: ueID, proc: proc}
	prev, active := c.harqBuf[key]
	if !newData && active && prev != tbHash {
		c.violate("harq-conservation",
			"server %d cell %d ue %d harq %d combined different TBs (%#x vs %#x)",
			server, cell, ueID, proc, prev, tbHash)
	}
	if ok {
		delete(c.harqBuf, key) // decoded: buffer released
	} else {
		c.harqBuf[key] = tbHash
	}
}

func (c *Checker) onSoftDiscard(server uint8) {
	for key := range c.harqBuf {
		if key.server == server {
			delete(c.harqBuf, key)
		}
	}
}

// onSwitchMigration asserts the register flip happened at or after the
// armed TTI boundary and updates the expected serving PHY.
func (c *Checker) onSwitchMigration(rec switchsim.MigrationRecord) {
	execAbs := resolveAbsSlot(rec.Slot.Index(), uint64(c.eng.Now()/phy.TTI))
	if execAbs < rec.ReqAbsSlot {
		c.violate("migration-boundary", "ru %d remapped at slot %d before boundary %d",
			rec.RU, execAbs, rec.ReqAbsSlot)
	}
	c.ruServing[rec.RU] = rec.ToPHY
}

// onULForward asserts uplink steering matches the serving PHY implied by
// the executed migrations.
func (c *Checker) onULForward(ru uint8, phyID uint8) {
	want, known := c.ruServing[ru]
	if known && phyID != want {
		c.violate("migration-boundary", "ru %d uplink steered to PHY %d, serving PHY is %d",
			ru, phyID, want)
	}
}

func (c *Checker) onUEState(ueID uint16, s ue.State) {
	if c.d.Slingshot && s != ue.StateConnected {
		c.violate("ue-detached", "ue %d left connected state (%v) under Slingshot", ueID, s)
	}
}

// ObserveUplink checks in-order delivery of a sequence-stamped uplink
// packet (invoked from the deployment's application-server sink).
func (c *Checker) ObserveUplink(ueID uint16, pkt []byte) {
	seq, ok := parseSeq(pkt, dirUp)
	if !ok {
		return
	}
	c.checkOrder("rlc-order-ul", c.ulLast, c.ulCount, ueID, seq)
}

// ObserveDownlink checks in-order delivery of a sequence-stamped downlink
// packet at the UE.
func (c *Checker) ObserveDownlink(ueID uint16, pkt []byte) {
	seq, ok := parseSeq(pkt, dirDown)
	if !ok {
		return
	}
	c.checkOrder("rlc-order-dl", c.dlLast, c.dlCount, ueID, seq)
}

func (c *Checker) checkOrder(inv string, last, count map[uint16]uint64, ueID uint16, seq uint64) {
	if prev, seen := last[ueID]; seen && seq <= prev {
		c.violate(inv, "ue %d seq %d delivered after %d (duplicate or reorder)", ueID, seq, prev)
		return
	}
	last[ueID] = seq
	count[ueID]++
}

// Finish runs the end-of-schedule assertions: every UE still connected,
// zero radio-link failures (Slingshot hides failovers from UEs entirely).
func (c *Checker) Finish() {
	if !c.d.Slingshot {
		return
	}
	for _, id := range sortedUEs(c.d) {
		u := c.d.UEs[id]
		if !u.Connected() {
			c.violate("ue-detached", "ue %d not connected at end of run", id)
		}
		if u.Stats.RLFs > 0 {
			c.violate("ue-detached", "ue %d declared %d radio link failures", id, u.Stats.RLFs)
		}
	}
}

// resolveAbsSlot maps a wrapped fronthaul slot index to the absolute slot
// closest to ref (the RU-side wrap resolution, fronthaul.SlotWrap period).
func resolveAbsSlot(idx uint64, ref uint64) uint64 {
	base := ref - ref%fronthaul.SlotWrap + idx
	best, bestDist := base, dist(base, ref)
	if base >= fronthaul.SlotWrap {
		if d := dist(base-fronthaul.SlotWrap, ref); d < bestDist {
			best, bestDist = base-fronthaul.SlotWrap, d
		}
	}
	if d := dist(base+fronthaul.SlotWrap, ref); d < bestDist {
		best = base + fronthaul.SlotWrap
	}
	return best
}

func dist(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func sortedServers(d *core.Deployment) []uint8 {
	out := make([]uint8, 0, len(d.PHYs))
	for s := range d.PHYs {
		out = append(out, s)
	}
	sortSlice(out)
	return out
}

func sortedUEs(d *core.Deployment) []uint16 {
	out := make([]uint16, 0, len(d.UEs))
	for id := range d.UEs {
		out = append(out, id)
	}
	sortSlice(out)
	return out
}

func sortSlice[T uint8 | uint16](s []T) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
