package chaos

import (
	"strings"
	"testing"

	"slingshot/internal/par"
)

// rogueProfile is Light plus one deliberately injected stale slot
// indication — the deterministic way to force a tti-regression violation
// and exercise the flight recorder end to end.
func rogueProfile() Profile {
	p := Light()
	p.Name = "light+rogue"
	p.RogueSlotInds = 1
	return p
}

// TestFlightRecorderOnForcedViolation forces an invariant violation and
// checks the report carries a flight dump: a virtual-time timeline of the
// events leading up to the breach plus counter deltas, byte-identical
// across worker-pool widths.
func TestFlightRecorderOnForcedViolation(t *testing.T) {
	runAt := func(workers int) *Report {
		prev := par.SetWorkers(workers)
		defer par.SetWorkers(prev)
		return Run(11, rogueProfile())
	}

	rep := runAt(1)
	if rep.TotalViolations == 0 {
		t.Fatalf("rogue slot indication produced no violation:\n%s", rep)
	}
	if rep.Flight == "" {
		t.Fatal("violating run produced no flight dump")
	}
	if !strings.Contains(rep.String(), rep.Flight) {
		t.Fatal("report text does not include the flight dump")
	}

	// The dump: header, then one timeline line per event, then deltas.
	lines := strings.Split(strings.TrimRight(rep.Flight, "\n"), "\n")
	if !strings.HasPrefix(lines[0], "flight recorder: last ") {
		t.Fatalf("unexpected dump header: %q", lines[0])
	}
	events := 0
	for _, ln := range lines[1:] {
		if strings.HasPrefix(ln, "[") && strings.Contains(ln, "ms]") {
			events++
		}
	}
	if events < 20 {
		t.Fatalf("flight dump holds %d timeline events, want >= 20:\n%s", events, rep.Flight)
	}
	if !strings.Contains(rep.Flight, "chaos-fault") || !strings.Contains(rep.Flight, "rogue-slot") {
		t.Errorf("flight dump does not show the injected fault:\n%s", rep.Flight)
	}
	if !strings.Contains(rep.Flight, "invariant") || !strings.Contains(rep.Flight, "tti-regression") {
		t.Errorf("flight dump does not show the violation event:\n%s", rep.Flight)
	}
	if !strings.Contains(rep.Flight, "counter deltas:") {
		t.Errorf("flight dump has no counter deltas:\n%s", rep.Flight)
	}

	// Worker-count invariance: the whole report, dump included, must be
	// byte-identical when the PHY pipeline fans out across 4 workers.
	rep4 := runAt(4)
	if rep.String() != rep4.String() {
		t.Fatalf("flight report differs across worker counts:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s",
			rep, rep4)
	}
}

// TestCleanRunHasNoFlightDump pins the clean-run report format: tracing is
// always on inside chaos runs, but a run without violations must render
// exactly as before (fingerprint line last, no dump).
func TestCleanRunHasNoFlightDump(t *testing.T) {
	rep, rec := RunTraced(7, Light())
	if rep.TotalViolations != 0 {
		t.Fatalf("light profile seed 7 unexpectedly violated:\n%s", rep)
	}
	if rep.Flight != "" {
		t.Fatalf("clean run captured a flight dump:\n%s", rep.Flight)
	}
	if !strings.HasSuffix(rep.String(), "\n") || !strings.Contains(rep.String(), "fingerprint: ") {
		t.Fatalf("report lost its fingerprint line:\n%s", rep)
	}
	if rec == nil || rec.Total() == 0 {
		t.Fatal("chaos run recorded no trace events")
	}
	if rec.Metrics().Counter("phy.decode.ok").Value() == 0 {
		t.Error("phy.decode.ok counter never moved during a traffic-bearing run")
	}
}
