package chaos

import (
	"fmt"
	"strings"
	"testing"

	"slingshot/internal/par"
)

// stubSample fabricates a deterministic sample from the grid coordinates
// alone, so these tests exercise the sweep machinery without fleet runs.
func stubSample(scenario string, ratio float64, seed uint64) (FrontierSample, error) {
	h := fnv64(fmt.Sprintf("%s|%.2f|%d", scenario, ratio, seed))
	s := FrontierSample{
		Cells:       4,
		Slots:       100,
		SpareBudget: int(ratio * 4),
		Killed:      2,
		Respared:    1,
		Denied:      1,
		Retries:     int(seed),
		GrantsLocal: 1,
		Fingerprint: h,
	}
	for c := 0; c < s.Cells; c++ {
		s.Dropped = append(s.Dropped, (h>>(4*c))%4)
	}
	return s, nil
}

func TestFrontierDeterministicAcrossWorkers(t *testing.T) {
	spec := FrontierSpec{
		Scenarios: []string{"a", "b", "c"},
		Ratios:    []float64{0, 0.5, 1},
		Seeds:     3,
	}
	var want string
	for _, workers := range []int{1, 4} {
		prev := par.SetWorkers(workers)
		rep, err := Frontier(spec, stubSample)
		par.SetWorkers(prev)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Samples != 27 || len(rep.Points) != 9 {
			t.Fatalf("samples=%d points=%d", rep.Samples, len(rep.Points))
		}
		if want == "" {
			want = rep.String()
		} else if rep.String() != want {
			t.Fatalf("frontier table differs at workers=%d:\n%s\nvs\n%s", workers, rep.String(), want)
		}
	}
	if !strings.Contains(want, "fingerprint: ") {
		t.Fatalf("missing fingerprint line:\n%s", want)
	}
}

func TestFrontierAggregation(t *testing.T) {
	spec := FrontierSpec{Scenarios: []string{"x"}, Ratios: []float64{0.5}, Seeds: 2}
	rep, err := Frontier(spec, func(sc string, ratio float64, seed uint64) (FrontierSample, error) {
		// Seed 1: cells drop {0,1}; seed 2: {2,3}. 100 slots per cell.
		return FrontierSample{
			Cells: 2, Slots: 100, SpareBudget: 1,
			Killed: 1, Respared: 1,
			Dropped: []uint64{2*seed - 2, 2*seed - 1},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Points[0]
	if p.Killed != 2 || p.Respared != 2 || p.SpareBudget != 1 {
		t.Fatalf("aggregate: %+v", p)
	}
	// 0+1+2+3 dropped of 400 slots → 98.5%.
	if want := 100 * (1 - 6.0/400); p.Availability != want {
		t.Fatalf("availability %.4f want %.4f", p.Availability, want)
	}
	// Sorted per-cell drops {0,1,2,3}: nearest-rank P50 = 1, P99 = max = 3.
	if p.P50 != 1 || p.P99 != 3 || p.Max != 3 {
		t.Fatalf("p50=%d p99=%d max=%d", p.P50, p.P99, p.Max)
	}
}

func TestFrontierErrorCanonicalOrder(t *testing.T) {
	spec := FrontierSpec{Scenarios: []string{"a", "b"}, Ratios: []float64{0, 1}, Seeds: 2}
	_, err := Frontier(spec, func(sc string, ratio float64, seed uint64) (FrontierSample, error) {
		if sc == "b" {
			return FrontierSample{}, fmt.Errorf("boom seed %d", seed)
		}
		return FrontierSample{Cells: 1, Slots: 1}, nil
	})
	if err == nil {
		t.Fatal("error swallowed")
	}
	// First failure in grid order: scenario b, ratio 0, seed 1.
	if !strings.Contains(err.Error(), `b ratio=0.00 seed=1`) {
		t.Fatalf("not the canonical first failure: %v", err)
	}
}

func TestFrontierSpecValidation(t *testing.T) {
	if _, err := Frontier(FrontierSpec{Ratios: []float64{1}}, stubSample); err == nil {
		t.Fatal("empty scenarios accepted")
	}
	if _, err := Frontier(FrontierSpec{Scenarios: []string{"a"}}, stubSample); err == nil {
		t.Fatal("empty ratios accepted")
	}
}

func TestFrontierErrOnViolations(t *testing.T) {
	spec := FrontierSpec{Scenarios: []string{"v"}, Ratios: []float64{0}, Seeds: 1}
	rep, err := Frontier(spec, func(sc string, ratio float64, seed uint64) (FrontierSample, error) {
		return FrontierSample{Cells: 1, Slots: 10, Violations: 2}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Err() == nil {
		t.Fatal("violating point not surfaced by Err")
	}
}

func TestPctileNearestRank(t *testing.T) {
	s := []uint64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want uint64
	}{{50, 5}, {99, 10}, {100, 10}, {1, 1}} {
		if got := pctile(s, tc.p); got != tc.want {
			t.Fatalf("pctile(%v) = %d want %d", tc.p, got, tc.want)
		}
	}
	if pctile(nil, 50) != 0 {
		t.Fatal("empty pctile")
	}
}
