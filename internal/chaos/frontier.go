package chaos

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"slingshot/internal/par"
)

// FrontierSample is one grid point's raw outcome: a fleet run at one
// (scenario, spare ratio, seed). The runner callback produces it — the
// chaos package owns the sweep and the statistics, the shard package
// owns the fleet, and the callback keeps the dependency pointing the
// right way (shard imports chaos, never the reverse).
type FrontierSample struct {
	Cells       int
	Slots       uint64 // TTI slots per cell over the horizon
	SpareBudget int    // total pooled spares (zone pools + overflow)
	Killed      int
	Respared    int
	Denied      int
	Retries     int
	GrantsLocal int
	GrantsCross int
	Violations  int
	Dropped     []uint64 // per-cell dropped TTIs
	Fingerprint uint64
}

// FrontierSpec is the sweep grid: every scenario × spare ratio is run
// for Seeds seeds (seed values 1..Seeds) and aggregated into one point.
type FrontierSpec struct {
	Scenarios []string
	Ratios    []float64
	Seeds     int
}

// FrontierPoint aggregates one (scenario, ratio) cell of the grid:
// availability is the served fraction of cell·TTI slots across all
// seeds, and P50/P99/Max summarize the per-cell dropped-TTI
// distribution — the SLO view of the same data.
type FrontierPoint struct {
	Scenario     string
	Ratio        float64
	SpareBudget  int
	Availability float64 // percent
	Killed       int
	Respared     int
	Denied       int
	Retries      int
	GrantsLocal  int
	GrantsCross  int
	Violations   int
	P50, P99     uint64
	Max          uint64
}

// FrontierReport is the deterministic result of a sweep.
type FrontierReport struct {
	Spec        FrontierSpec
	Points      []FrontierPoint
	Samples     int
	Fingerprint uint64
}

// Frontier sweeps the scenario × ratio × seed grid through run,
// sharding grid points across internal/par workers. Results are
// assembled in grid order and points aggregated deterministically, so
// the report is byte-identical at any worker count; the first failing
// point in canonical (scenario, ratio, seed) order aborts the sweep.
func Frontier(spec FrontierSpec, run func(scenario string, ratio float64, seed uint64) (FrontierSample, error)) (*FrontierReport, error) {
	if len(spec.Scenarios) == 0 {
		return nil, fmt.Errorf("chaos: frontier needs at least one scenario")
	}
	if len(spec.Ratios) == 0 {
		return nil, fmt.Errorf("chaos: frontier needs at least one spare ratio")
	}
	if spec.Seeds < 1 {
		spec.Seeds = 1
	}

	type res struct {
		s   FrontierSample
		err error
	}
	nR, nS := len(spec.Ratios), spec.Seeds
	total := len(spec.Scenarios) * nR * nS
	results := par.Map(total, func(i int) res {
		sc := spec.Scenarios[i/(nR*nS)]
		ratio := spec.Ratios[(i/nS)%nR]
		seed := uint64(i%nS) + 1
		s, err := run(sc, ratio, seed)
		return res{s, err}
	})
	for i, r := range results {
		if r.err != nil {
			return nil, fmt.Errorf("chaos: frontier %s ratio=%.2f seed=%d: %w",
				spec.Scenarios[i/(nR*nS)], spec.Ratios[(i/nS)%nR], uint64(i%nS)+1, r.err)
		}
	}

	rep := &FrontierReport{Spec: spec, Samples: total}
	for si, sc := range spec.Scenarios {
		for ri, ratio := range spec.Ratios {
			p := FrontierPoint{Scenario: sc, Ratio: ratio}
			var dropped []uint64
			var droppedSum, slotSum uint64
			for s := 0; s < nS; s++ {
				smp := results[(si*nR+ri)*nS+s].s
				p.SpareBudget = smp.SpareBudget
				p.Killed += smp.Killed
				p.Respared += smp.Respared
				p.Denied += smp.Denied
				p.Retries += smp.Retries
				p.GrantsLocal += smp.GrantsLocal
				p.GrantsCross += smp.GrantsCross
				p.Violations += smp.Violations
				slotSum += uint64(smp.Cells) * smp.Slots
				for _, d := range smp.Dropped {
					dropped = append(dropped, d)
					droppedSum += d
				}
			}
			if slotSum > 0 {
				p.Availability = 100 * (1 - float64(droppedSum)/float64(slotSum))
			}
			sort.Slice(dropped, func(a, b int) bool { return dropped[a] < dropped[b] })
			p.P50 = pctile(dropped, 50)
			p.P99 = pctile(dropped, 99)
			if n := len(dropped); n > 0 {
				p.Max = dropped[n-1]
			}
			rep.Points = append(rep.Points, p)
		}
	}
	rep.Fingerprint = fnv64(rep.body())
	return rep, nil
}

// pctile is the nearest-rank percentile of an ascending-sorted slice.
func pctile(sorted []uint64, p float64) uint64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func (r *FrontierReport) body() string {
	var b strings.Builder
	fmt.Fprintf(&b, "frontier: scenarios=%s ratios=%s seeds=%d samples=%d\n",
		strings.Join(r.Spec.Scenarios, ","), joinRatios(r.Spec.Ratios), r.Spec.Seeds, r.Samples)
	b.WriteString("scenario       ratio spares avail%     killed respared denied retry grants(l+x) p50 p99 max viol\n")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "%-14s %5.2f %6d %9.4f %6d %8d %6d %5d %6d+%-4d %3d %3d %3d %4d\n",
			p.Scenario, p.Ratio, p.SpareBudget, p.Availability,
			p.Killed, p.Respared, p.Denied, p.Retries,
			p.GrantsLocal, p.GrantsCross, p.P50, p.P99, p.Max, p.Violations)
	}
	return b.String()
}

// String renders the availability-vs-spare-ratio table with its
// fingerprint. Byte-identical at any shards × workers count.
func (r *FrontierReport) String() string {
	return r.body() + fmt.Sprintf("fingerprint: %016x\n", r.Fingerprint)
}

// Err reports the first invariant-violating point, if any: a frontier
// point may legitimately record availability loss (that is the data),
// but never a cross-layer invariant violation.
func (r *FrontierReport) Err() error {
	for _, p := range r.Points {
		if p.Violations > 0 {
			return fmt.Errorf("chaos: frontier %s ratio=%.2f recorded %d invariant violation(s)",
				p.Scenario, p.Ratio, p.Violations)
		}
	}
	return nil
}

func joinRatios(rs []float64) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = fmt.Sprintf("%.2f", r)
	}
	return strings.Join(parts, ",")
}
