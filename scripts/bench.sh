#!/bin/sh
# Benchmark regression harness: runs the benchmark suite with -benchmem and
# records per-benchmark mean ns/op, B/op and allocs/op into a dated JSON
# file, so successive PRs can diff kernel and end-to-end performance.
#
# Usage:
#   scripts/bench.sh [go-bench-regex]
#       run the suite and write OUT
#   scripts/bench.sh --compare <baseline.json> [go-bench-regex]
#       run the suite, write OUT, then diff OUT against the baseline and
#       exit non-zero if any benchmark regressed any metric by more than
#       THRESHOLD percent (default 15)
#   scripts/bench.sh --diff <old.json> <new.json>
#       just diff two existing result files with the same gate (no run)
#
# Env:
#   COUNT=5            samples per benchmark (go test -count)
#   BENCHTIME=         forwarded to -benchtime when set (e.g. 1x, 100ms)
#   OUT=BENCH_....json output file (default BENCH_<date>.json)
#   WORKERS=           sets SLINGSHOT_WORKERS for the run (recorded in meta)
#   THRESHOLD=15       regression gate percentage for --compare / --diff
set -eu

cd "$(dirname "$0")/.."

# diff_results <old.json> <new.json>: per benchmark present in both files,
# print the three metrics side by side and flag regressions beyond the
# threshold. Absolute floors (1us, 64 B, 1 alloc) keep tiny-denominator
# noise from tripping the relative gate. Exits 1 on any flagged regression.
diff_results() {
    awk -v thr="${THRESHOLD:-15}" '
    # Entries are comma-separated key/value pairs in both the one-line and
    # the pretty-printed JSON layout, so splitting records on commas parses
    # either formatting.
    BEGIN { RS = "," }
    FNR == 1 { file++ }
    function num(s) { sub(/.*:[ \t\n]*/, "", s); sub(/[^0-9.eE+-].*/, "", s); return s + 0 }
    /"name"[ \t]*:/ {
        name = $0
        sub(/.*"name"[ \t]*:[ \t]*"/, "", name)
        sub(/".*/, "", name)
        if (file == 1) { if (!(name in inOld)) { oldOrder[no++] = name; inOld[name] = 1 } }
        else           { if (!(name in inNew)) { newOrder[nn++] = name; inNew[name] = 1 } }
    }
    /"ns_op"[ \t]*:/     { v[file, name, "ns_op"]     = num($0) }
    /"b_op"[ \t]*:/      { v[file, name, "b_op"]      = num($0) }
    /"allocs_op"[ \t]*:/ { v[file, name, "allocs_op"] = num($0) }
    END {
        floor["ns_op"] = 1000; floor["b_op"] = 64; floor["allocs_op"] = 1
        fail = 0
        printf "%-24s %-10s %16s %16s %10s\n", "benchmark", "metric", "baseline", "new", "delta"
        for (i = 0; i < nn; i++) {
            name = newOrder[i]
            if (!(name in inOld)) {
                printf "%-24s (new benchmark, no baseline entry)\n", name
                continue
            }
            nm = split("ns_op b_op allocs_op", metrics, " ")
            for (j = 1; j <= nm; j++) {
                m = metrics[j]
                old = v[1, name, m]; new = v[2, name, m]
                mark = ""
                if (new > old * (1 + thr / 100) + floor[m]) { mark = "  REGRESSION"; fail = 1 }
                if (old > 0)
                    printf "%-24s %-10s %16.1f %16.1f %+9.1f%%%s\n", name, m, old, new, (new - old) / old * 100, mark
                else
                    printf "%-24s %-10s %16.1f %16.1f %10s%s\n", name, m, old, new, "n/a", mark
            }
        }
        for (i = 0; i < no; i++)
            if (!(oldOrder[i] in inNew))
                printf "%-24s (present in baseline, missing from new run)\n", oldOrder[i]
        if (fail) { printf "FAIL: at least one metric regressed beyond %d%%\n", thr; exit 1 }
        printf "OK: no metric regressed beyond %d%%\n", thr
    }' "$1" "$2"
}

BASELINE=""
case "${1:-}" in
--diff)
    [ $# -eq 3 ] || { echo "usage: scripts/bench.sh --diff <old.json> <new.json>" >&2; exit 2; }
    diff_results "$2" "$3"
    exit $?
    ;;
--compare)
    BASELINE="${2:?usage: scripts/bench.sh --compare <baseline.json> [go-bench-regex]}"
    [ -f "$BASELINE" ] || { echo "baseline $BASELINE not found" >&2; exit 2; }
    shift 2
    ;;
esac

PATTERN="${1:-.}"
COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

ARGS="-run ^\$ -bench $PATTERN -benchmem -count $COUNT"
if [ -n "${BENCHTIME:-}" ]; then
    ARGS="$ARGS -benchtime $BENCHTIME"
fi
if [ -n "${WORKERS:-}" ]; then
    export SLINGSHOT_WORKERS="$WORKERS"
fi

TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

# shellcheck disable=SC2086
go test $ARGS ./... | tee "$TXT"

# CPU model and GOAMD64 level pin down which microarchitecture the numbers
# came from — kernel timings are not comparable across either.
CPU="$(awk -F': ' '/^model name/ { print $2; exit }' /proc/cpuinfo 2>/dev/null || true)"

awk -v date="$(date +%Y-%m-%d)" \
    -v goversion="$(go env GOVERSION)" \
    -v goamd64="$(go env GOAMD64)" \
    -v cpu="$CPU" \
    -v count="$COUNT" \
    -v benchtime="${BENCHTIME:-default}" \
    -v workers="${SLINGSHOT_WORKERS:-}" '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")      { ns[name] += $(i-1); }
        if ($(i) == "B/op")       { bytes[name] += $(i-1); }
        if ($(i) == "allocs/op")  { allocs[name] += $(i-1); }
    }
    if (!(name in n)) order[no++] = name
    n[name]++
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"goamd64\": \"%s\",\n", goamd64
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"count\": %d,\n", count
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"slingshot_workers\": \"%s\",\n", workers
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < no; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"samples\": %d, \"ns_op\": %.1f, \"b_op\": %.1f, \"allocs_op\": %.2f}%s\n", \
            name, n[name], ns[name] / n[name], bytes[name] / n[name], \
            allocs[name] / n[name], (i < no - 1) ? "," : ""
    }
    printf "  ]\n}\n"
}' "$TXT" > "$OUT"

echo "wrote $OUT"

if [ -n "$BASELINE" ]; then
    echo "== compare against $BASELINE (threshold ${THRESHOLD:-15}%) =="
    diff_results "$BASELINE" "$OUT"
fi
