#!/bin/sh
# Benchmark regression harness: runs the benchmark suite with -benchmem and
# records per-benchmark mean ns/op, B/op and allocs/op into a dated JSON
# file, so successive PRs can diff kernel and end-to-end performance.
#
# Usage: scripts/bench.sh [go-bench-regex]
# Env:
#   COUNT=5            samples per benchmark (go test -count)
#   BENCHTIME=         forwarded to -benchtime when set (e.g. 1x, 100ms)
#   OUT=BENCH_....json output file (default BENCH_<date>.json)
#   WORKERS=           sets SLINGSHOT_WORKERS for the run (recorded in meta)
set -eu

cd "$(dirname "$0")/.."
PATTERN="${1:-.}"
COUNT="${COUNT:-5}"
OUT="${OUT:-BENCH_$(date +%Y-%m-%d).json}"

ARGS="-run ^\$ -bench $PATTERN -benchmem -count $COUNT"
if [ -n "${BENCHTIME:-}" ]; then
    ARGS="$ARGS -benchtime $BENCHTIME"
fi
if [ -n "${WORKERS:-}" ]; then
    export SLINGSHOT_WORKERS="$WORKERS"
fi

TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

# shellcheck disable=SC2086
go test $ARGS ./... | tee "$TXT"

awk -v date="$(date +%Y-%m-%d)" \
    -v goversion="$(go env GOVERSION)" \
    -v count="$COUNT" \
    -v benchtime="${BENCHTIME:-default}" \
    -v workers="${SLINGSHOT_WORKERS:-}" '
/^Benchmark/ && /ns\/op/ {
    name = $1
    sub(/-[0-9]+$/, "", name)          # strip the GOMAXPROCS suffix
    sub(/^Benchmark/, "", name)
    for (i = 2; i <= NF; i++) {
        if ($(i) == "ns/op")      { ns[name] += $(i-1); }
        if ($(i) == "B/op")       { bytes[name] += $(i-1); }
        if ($(i) == "allocs/op")  { allocs[name] += $(i-1); }
    }
    if (!(name in n)) order[no++] = name
    n[name]++
}
END {
    printf "{\n"
    printf "  \"date\": \"%s\",\n", date
    printf "  \"go\": \"%s\",\n", goversion
    printf "  \"count\": %d,\n", count
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"slingshot_workers\": \"%s\",\n", workers
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < no; i++) {
        name = order[i]
        printf "    {\"name\": \"%s\", \"samples\": %d, \"ns_op\": %.1f, \"b_op\": %.1f, \"allocs_op\": %.2f}%s\n", \
            name, n[name], ns[name] / n[name], bytes[name] / n[name], \
            allocs[name] / n[name], (i < no - 1) ? "," : ""
    }
    printf "  ]\n}\n"
}' "$TXT" > "$OUT"

echo "wrote $OUT"
