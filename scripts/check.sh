#!/bin/sh
# Full local gate: vet, build, tests under the race detector, the chaos
# soak, and a short fuzz smoke over each binary codec package.
# Usage: scripts/check.sh [fuzz-seconds-per-target]
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-10}s"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (sequential schedule, SLINGSHOT_WORKERS=1) =="
SLINGSHOT_WORKERS=1 go test -race ./...

echo "== chaos soak under race detector (SLINGSHOT_WORKERS=4) =="
# The parallel lane: seed-sharded soak plus per-slot worker-pool decode,
# all under the race detector. Every chaos run records the cross-layer
# event trace (chaos.Run delegates to RunTraced), so this doubles as the
# traced-soak race lane: emission sites in phy/harq/rlc/fronthaul/chaos
# run under -race with the worker pool live.
SLINGSHOT_WORKERS=4 go test -race ./internal/chaos -run TestChaosSoak -chaos.seeds 10 -count=1

echo "== chaos soak (25 seeds) =="
go test ./internal/chaos -run TestChaosSoak -chaos.seeds 25

echo "== trace determinism smoke (-race) =="
# The observability layer's own gate: the golden 100-TTI trace must match
# byte-for-byte (and re-match at workers=4), a forced invariant violation
# must produce the flight-recorder dump identically at workers 1 vs 4, and
# the serialized chaos trace must be invariant to worker-pool width.
SLINGSHOT_WORKERS=4 go test -race ./internal/trace -run 'TestGoldenTrace' -count=1
SLINGSHOT_WORKERS=4 go test -race ./internal/chaos -run 'TestFlightRecorder|TestCleanRunHasNoFlightDump' -count=1
go test -race . -run 'TestReportsInvariantToWorkerCount/chaos-trace' -count=1

echo "== bench smoke (-benchtime=1x) =="
# One iteration of every benchmark: asserts the bench harness itself and
# the benchmarks' setup code stay healthy without paying for real timing.
go test -run '^$' -bench . -benchtime=1x ./... > /dev/null

echo "== fuzz smoke (${FUZZTIME}/target) =="
for target in \
    internal/fronthaul:FuzzDecodePacket \
    internal/fronthaul:FuzzDecodeSections \
    internal/fronthaul:FuzzDecompressBFP \
    internal/fronthaul:FuzzCompressBFP \
    internal/fapi:FuzzDecodeFAPI \
    internal/phy:FuzzCodecRoundTrip \
    internal/phy:FuzzDecodeBlockGarbage
do
    pkg="${target%%:*}"
    fn="${target##*:}"
    echo "-- $pkg $fn"
    go test "./$pkg" -run "^$fn\$" -fuzz "^$fn\$" -fuzztime "$FUZZTIME"
done

echo "ALL CHECKS PASSED"
