#!/bin/sh
# Full local gate: vet, build, tests under the race detector, the chaos
# soak, and a short fuzz smoke over each binary codec package.
# Usage: scripts/check.sh [fuzz-seconds-per-target]
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-10}s"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race =="
go test -race ./...

echo "== chaos soak (25 seeds) =="
go test ./internal/chaos -run TestChaosSoak -chaos.seeds 25

echo "== fuzz smoke (${FUZZTIME}/target) =="
for target in \
    internal/fronthaul:FuzzDecodePacket \
    internal/fronthaul:FuzzDecodeSections \
    internal/fronthaul:FuzzDecompressBFP \
    internal/fronthaul:FuzzCompressBFP \
    internal/fapi:FuzzDecodeFAPI \
    internal/phy:FuzzCodecRoundTrip \
    internal/phy:FuzzDecodeBlockGarbage
do
    pkg="${target%%:*}"
    fn="${target##*:}"
    echo "-- $pkg $fn"
    go test "./$pkg" -run "^$fn\$" -fuzz "^$fn\$" -fuzztime "$FUZZTIME"
done

echo "ALL CHECKS PASSED"
