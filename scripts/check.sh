#!/bin/sh
# Full local gate: vet, build, tests under the race detector, the chaos
# soak, and a short fuzz smoke over each binary codec package.
# Usage: scripts/check.sh [fuzz-seconds-per-target]
set -eu

cd "$(dirname "$0")/.."
FUZZTIME="${1:-10}s"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test -race (sequential schedule, SLINGSHOT_WORKERS=1) =="
SLINGSHOT_WORKERS=1 go test -race ./...

echo "== chaos soak under race detector (SLINGSHOT_WORKERS=4) =="
# The parallel lane: seed-sharded soak plus per-slot worker-pool decode,
# all under the race detector. Every chaos run records the cross-layer
# event trace (chaos.Run delegates to RunTraced), so this doubles as the
# traced-soak race lane: emission sites in phy/harq/rlc/fronthaul/chaos
# run under -race with the worker pool live.
SLINGSHOT_WORKERS=4 go test -race ./internal/chaos -run TestChaosSoak -chaos.seeds 10 -count=1

echo "== chaos soak (25 seeds) =="
go test ./internal/chaos -run TestChaosSoak -chaos.seeds 25

echo "== trace determinism smoke (-race) =="
# The observability layer's own gate: the golden 100-TTI trace must match
# byte-for-byte (and re-match at workers=4), a forced invariant violation
# must produce the flight-recorder dump identically at workers 1 vs 4, and
# the serialized chaos trace must be invariant to worker-pool width.
SLINGSHOT_WORKERS=4 go test -race ./internal/trace -run 'TestGoldenTrace' -count=1
SLINGSHOT_WORKERS=4 go test -race ./internal/chaos -run 'TestFlightRecorder|TestCleanRunHasNoFlightDump' -count=1
go test -race . -run 'TestReportsInvariantToWorkerCount/chaos-trace' -count=1

echo "== kernel differential lane (-race, hot kernels vs retained references) =="
# The SoA/closed-form/branch-free kernels are each pinned bit-exactly to a
# straightforward reference implementation kept in-tree. Run the
# differential suites under the race detector with the worker pool live —
# any float reordering, tie-break change, or lane-staging race shows here
# before it can skew a report.
SLINGSHOT_WORKERS=4 go test -race ./internal/fec -count=1 \
    -run 'TestDecodeMatchesReference|TestDecodeBatchMatchesReference|TestDecodeI8|TestQuantizeLLRI8'
SLINGSHOT_WORKERS=4 go test -race ./internal/dsp -count=1 \
    -run 'TestDemodulateMatchesReference'
SLINGSHOT_WORKERS=4 go test -race ./internal/fronthaul -count=1 \
    -run 'TestBFPMatchesReference|TestBFPHostile'
SLINGSHOT_WORKERS=4 go test -race ./internal/phy -count=1 \
    -run 'TestLLRLane'

echo "== scheduler differential lane (-race, two-tier queue vs reference heap) =="
# The event core's two-tier calendar/heap queue is pinned to the seed's
# container/heap engine kept in-tree (sim/reference.go): randomized op
# scripts (FIFO-tied bursts, far-future timers, Remove on stale handles,
# periodic cancels) must fire identical event logs with identical clocks,
# Pending counts and queue snapshots — the snapshot equality is what keeps
# checkpoint fingerprints engine-independent.
SLINGSHOT_WORKERS=4 go test -race ./internal/sim -count=1 \
    -run 'TestQueueDifferential|TestEngineStepBenchmarksDoNotAllocate'

echo "== scheduler bench smoke (--compare over engine microbenches) =="
# Same shape as the kernel bench smoke: one iteration of the engine
# microbenchmarks through the JSON harness plus a self-diff, so the
# schedule→fire alloc assertions and the compare pipeline run every check.
SSMOKE="$(mktemp -d)"
BENCHTIME=1x COUNT=1 OUT="$SSMOKE/sched.json" \
    scripts/bench.sh 'EngineStep|EngineScheduleCancel' > /dev/null
scripts/bench.sh --diff "$SSMOKE/sched.json" "$SSMOKE/sched.json" > /dev/null
rm -rf "$SSMOKE"

echo "== kernel bench smoke (--compare over FEC/BFP/demod kernels) =="
# A fast --compare pass over just the kernel benchmarks against a
# self-recorded snapshot: exercises the full compare pipeline (run, JSON,
# diff, gate) on the hot kernels every check. Not a timing gate — COUNT=1
# at 1x is noise — the timing gate is the committed baseline diff below.
KSMOKE="$(mktemp -d)"
BENCHTIME=1x COUNT=1 OUT="$KSMOKE/kern.json" \
    scripts/bench.sh 'FECDecode$|BFPRoundTrip|Demodulate$' > /dev/null
scripts/bench.sh --diff "$KSMOKE/kern.json" "$KSMOKE/kern.json" > /dev/null
rm -rf "$KSMOKE"

echo "== bench smoke + compare gate (-benchtime=1x) =="
# One iteration of every benchmark through the JSON harness (asserts the
# harness and the benchmarks' setup code stay healthy), then the --compare
# gate's own logic: a result file diffed against itself must pass, and a
# doctored ~10x ns/op regression must make the gate exit non-zero. Timing
# at 1x is too noisy to diff against the committed baseline here; use
# `scripts/bench.sh --compare BENCH_<date>_baseline.json` for that.
SMOKE="$(mktemp -d)"
trap 'rm -rf "$SMOKE"' EXIT
BENCHTIME=1x COUNT=1 OUT="$SMOKE/now.json" scripts/bench.sh > /dev/null
scripts/bench.sh --diff "$SMOKE/now.json" "$SMOKE/now.json" > /dev/null
sed 's/"ns_op": /"ns_op": 9/' "$SMOKE/now.json" > "$SMOKE/slow.json"
if scripts/bench.sh --diff "$SMOKE/now.json" "$SMOKE/slow.json" > /dev/null 2>&1; then
    echo "bench compare gate failed to flag a 10x ns/op regression" >&2
    exit 1
fi

echo "== shard determinism lane (-race, shards=1 vs shards=4) =="
# The fleet-chaos scenario must render byte-identically however the cells
# are grouped onto runner goroutines, with the worker pool live under the
# race detector. Any divergence prints both reports.
FLEET_ARGS="-cells 8 -ues 96 -fleet-chaos -seed 9 -horizon 200ms"
# shellcheck disable=SC2086
A="$(SLINGSHOT_WORKERS=4 go run -race ./cmd/experiments $FLEET_ARGS -shards 1)"
# shellcheck disable=SC2086
B="$(SLINGSHOT_WORKERS=4 go run -race ./cmd/experiments $FLEET_ARGS -shards 4)"
if [ "$A" != "$B" ]; then
    echo "fleet report diverged between shards=1 and shards=4:" >&2
    printf '--- shards=1 ---\n%s\n--- shards=4 ---\n%s\n' "$A" "$B" >&2
    exit 1
fi
printf '%s\n' "$A" | grep fingerprint

echo "== correlated-chaos determinism lane (-race, rack-loss, shards=1 vs shards=4) =="
# Correlated faults ride the same contract: a rack-loss schedule over a
# zoned topology (zone kills, spare grants, retries, partitions deferred
# at zone boundaries) must render byte-identically however the cells are
# grouped, with the worker pool live under the race detector.
CORR_ARGS="-cells 8 -ues 48 -fleet-profile rack-loss -seed 11"
# shellcheck disable=SC2086
A="$(SLINGSHOT_WORKERS=4 go run -race ./cmd/experiments $CORR_ARGS -shards 1)"
# shellcheck disable=SC2086
B="$(SLINGSHOT_WORKERS=4 go run -race ./cmd/experiments $CORR_ARGS -shards 4)"
if [ "$A" != "$B" ]; then
    echo "correlated fleet report diverged between shards=1 and shards=4:" >&2
    printf '--- shards=1 ---\n%s\n--- shards=4 ---\n%s\n' "$A" "$B" >&2
    exit 1
fi
printf '%s\n' "$A" | grep fingerprint

echo "== frontier smoke (availability-vs-spare-ratio sweep) =="
# The sweep must complete with zero invariant violations and print its
# deterministic table + fingerprint; a small -scale keeps it quick.
go run ./cmd/experiments -run frontier -scale 0.2 | tail -6

echo "== metro scale lane (-race, 100 cells / 10k UEs) =="
# The headline scale target: a 100-cell, 10k-UE lockstep fleet must
# complete cleanly under the race detector (short horizon: the point is
# barrier/mailbox correctness at width, not a long soak).
go run -race ./cmd/experiments -cells 100 -ues 10000 -horizon 15ms | tail -3

echo "== checkpoint lane (-race restore-replay equivalence) =="
# The time-travel contract: restore-at-barrier-k then run-to-horizon must
# be byte-identical to the uninterrupted run across shards x workers, and
# a forced rogue violation's replayed flight dump must match the straight
# run's. Run under the race detector with the worker pool live.
SLINGSHOT_WORKERS=4 go test -race . -count=1 \
    -run 'TestRestoreReplayEquivalence$|TestRestoreReplayEquivalencePooling|TestForcedViolationReplayDump'

echo "== checkpoint lane (slingshotd HTTP smoke) =="
# Resident-server smoke: bring up -serve with a forced rogue violation,
# wait for the run (which auto-replays from the nearest checkpoint and
# must find byte-identical flight dumps), scrape /metrics, rewind-and-hold
# at the violation barrier, force a /checkpoint, kill the server, restart
# a fresh process on the same checkpoint directory, /restore the same
# barrier, and require the identical snapshot fingerprint across the
# process boundary.
CKPT="$(mktemp -d)"
go build -o "$CKPT/slingshotd" ./cmd/slingshotd
"$CKPT/slingshotd" -serve 127.0.0.1:0 -scenario metro -cells 4 -ues 8 \
    -ckpt-every 40 -ckpt-dir "$CKPT/snaps" -rogue-at 0.1 -rogue-cell 2 \
    > "$CKPT/serve1.log" 2>&1 &
SRV=$!
trap 'rm -rf "$SMOKE" "$CKPT"; kill $SRV 2>/dev/null || true' EXIT
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's|serve: listening on http://||p' "$CKPT/serve1.log")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "slingshotd -serve did not come up" >&2; exit 1; }
DONE=""
for _ in $(seq 1 150); do
    if curl -sf "http://$ADDR/status" | grep -q '"done": true'; then DONE=1; break; fi
    sleep 0.2
done
[ -n "$DONE" ] || { echo "serve run did not finish" >&2; exit 1; }
curl -sf "http://$ADDR/metrics" | grep -q '# fingerprint' \
    || { echo "/metrics missing fingerprint line" >&2; exit 1; }
curl -sf "http://$ADDR/events" | grep -q 'auto-replay: flight dumps byte-identical' \
    || { echo "auto-replay did not verify the forced violation" >&2; exit 1; }
FP1="$(curl -sf -X POST "http://$ADDR/restore?at_us=100000&hold=1" \
    | sed -n 's/.*"fingerprint": "\([0-9a-f]*\)".*/\1/p')"
FP2="$(curl -sf -X POST "http://$ADDR/checkpoint" \
    | sed -n 's/.*"fingerprint": "\([0-9a-f]*\)".*/\1/p')"
kill $SRV
[ -n "$FP1" ] && [ "$FP1" = "$FP2" ] \
    || { echo "restore/checkpoint fingerprints disagree: '$FP1' vs '$FP2'" >&2; exit 1; }
"$CKPT/slingshotd" -serve 127.0.0.1:0 -scenario metro -cells 4 -ues 8 \
    -ckpt-every 0 -ckpt-dir "$CKPT/snaps" -rogue-at 0.1 -rogue-cell 2 \
    > "$CKPT/serve2.log" 2>&1 &
SRV=$!
ADDR=""
for _ in $(seq 1 100); do
    ADDR="$(sed -n 's|serve: listening on http://||p' "$CKPT/serve2.log")"
    [ -n "$ADDR" ] && break
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "restarted slingshotd did not come up" >&2; exit 1; }
FP3="$(curl -sf -X POST "http://$ADDR/restore?at_us=100000&hold=1" \
    | sed -n 's/.*"fingerprint": "\([0-9a-f]*\)".*/\1/p')"
kill $SRV
[ "$FP1" = "$FP3" ] \
    || { echo "fingerprint changed across process restart: '$FP1' vs '$FP3'" >&2; exit 1; }
echo "checkpoint fingerprint stable across restart: $FP1"

echo "== fuzz smoke (${FUZZTIME}/target) =="
for target in \
    internal/fronthaul:FuzzDecodePacket \
    internal/fronthaul:FuzzDecodeSections \
    internal/fronthaul:FuzzDecompressBFP \
    internal/fronthaul:FuzzCompressBFP \
    internal/fapi:FuzzDecodeFAPI \
    internal/phy:FuzzCodecRoundTrip \
    internal/phy:FuzzDecodeBlockGarbage \
    internal/shard:FuzzDecodeMessage \
    internal/ckpt:FuzzCheckpointDecode
do
    pkg="${target%%:*}"
    fn="${target##*:}"
    echo "-- $pkg $fn"
    go test "./$pkg" -run "^$fn\$" -fuzz "^$fn\$" -fuzztime "$FUZZTIME"
done

echo "ALL CHECKS PASSED"
