module slingshot

go 1.22
