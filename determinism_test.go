package slingshot

// Seed-determinism property tests: the whole simulation — experiments and
// chaos schedules alike — must be a pure function of its seed. Identical
// seeds reproduce byte-identical reports (the property every "replay the
// failing seed" workflow depends on); different seeds must diverge.

import "testing"

func TestFig8Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 is slow")
	}
	a, err := RunExperiment("fig8", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment("fig8", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fig8 not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestChaosDeterministicAcrossRuns(t *testing.T) {
	a, err := Chaos(5, "light")
	if err != nil {
		t.Fatalf("%v\n%s", err, a)
	}
	b, err := Chaos(5, "light")
	if err != nil {
		t.Fatalf("%v\n%s", err, b)
	}
	if a != b {
		t.Fatalf("same chaos seed diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	c, err := Chaos(6, "light")
	if err != nil {
		t.Fatalf("%v\n%s", err, c)
	}
	if a == c {
		t.Fatal("different chaos seeds produced byte-identical reports")
	}
}

func TestChaosUnknownProfile(t *testing.T) {
	if _, err := Chaos(1, "nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}
