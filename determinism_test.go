package slingshot

// Seed-determinism property tests: the whole simulation — experiments and
// chaos schedules alike — must be a pure function of its seed. Identical
// seeds reproduce byte-identical reports (the property every "replay the
// failing seed" workflow depends on); different seeds must diverge.

import (
	"testing"
	"time"

	"slingshot/internal/mem"
	"slingshot/internal/par"
)

// TestReportsInvariantToShardCount extends the worker-count contract to
// the sharded fleet: the metro scenario and the fleet-chaos scenario must
// render byte-identical reports at every shard-group count × worker-pool
// width combination. The mailbox's (virtualTime, srcShard, seq) drain
// order is what makes this hold — srcShard is the logical cell index, so
// regrouping cells onto different runner goroutines cannot reorder
// deliveries.
func TestReportsInvariantToShardCount(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: fleet runs at four shard/worker combinations")
	}
	cases := []struct {
		name string
		run  func(shards int) (string, error)
	}{
		{"metro", func(shards int) (string, error) {
			return Metro(MetroOptions{Cells: 6, UEs: 36, Shards: shards, Seed: 11})
		}},
		{"fleet-chaos", func(shards int) (string, error) {
			return Metro(MetroOptions{Cells: 6, UEs: 36, Shards: shards, Seed: 11, Chaos: true})
		}},
		{"metro-trace", func(shards int) (string, error) {
			return Metro(MetroOptions{Cells: 4, UEs: 16, Shards: shards, Seed: 2, Trace: true})
		}},
		// Correlated-failure scenarios ride the same contract: the fault
		// schedule is drawn at build time from the fleet seed's RNG tree,
		// and partition deferral re-posts with untouched (Src, Seq).
		{"rack-loss", func(shards int) (string, error) {
			return Metro(MetroOptions{Cells: 6, UEs: 36, Shards: shards, Seed: 11, Profile: "rack-loss"})
		}},
		// The frontier sweep composes fleet runs via par.Map, so it must be
		// invariant to both knobs at once.
		{"frontier", func(shards int) (string, error) {
			return Frontier(FrontierOptions{
				Cells:     4,
				UEs:       16,
				Shards:    shards,
				Scenarios: []string{"rack-loss", "upgrade-wave"},
				Ratios:    []float64{0, 0.5},
				Horizon:   280 * time.Millisecond,
			})
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			base := ""
			for _, shards := range []int{1, 4} {
				for _, workers := range []int{1, 4} {
					prev := par.SetWorkers(workers)
					got, err := tc.run(shards)
					par.SetWorkers(prev)
					if err != nil {
						t.Fatalf("shards=%d workers=%d: %v\n%s", shards, workers, err, got)
					}
					if base == "" {
						base = got
					} else if got != base {
						t.Fatalf("report differs at shards=%d workers=%d:\n--- base ---\n%s\n--- got ---\n%s",
							shards, workers, base, got)
					}
				}
			}
		})
	}
}

// TestMetroSoakShardAware: fleet soaks surface per-cell reports through
// the shard-aware chaos.SoakReports path.
func TestMetroSoakShardAware(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: fleet soak")
	}
	if failing, ok := MetroSoak(2, 4, 16); !ok {
		t.Fatalf("fleet soak failed:\n%s", failing)
	}
	// Invalid fleet shapes must fail the soak, not silently pass.
	if _, ok := MetroSoak(1, 2, 1); ok {
		t.Fatal("soak passed a fleet with empty cells")
	}
}

func TestFig8Deterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fig8 is slow")
	}
	a, err := RunExperiment("fig8", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunExperiment("fig8", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("fig8 not deterministic:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

func TestChaosDeterministicAcrossRuns(t *testing.T) {
	a, err := Chaos(5, "light")
	if err != nil {
		t.Fatalf("%v\n%s", err, a)
	}
	b, err := Chaos(5, "light")
	if err != nil {
		t.Fatalf("%v\n%s", err, b)
	}
	if a != b {
		t.Fatalf("same chaos seed diverged:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
	c, err := Chaos(6, "light")
	if err != nil {
		t.Fatalf("%v\n%s", err, c)
	}
	if a == c {
		t.Fatal("different chaos seeds produced byte-identical reports")
	}
}

func TestChaosUnknownProfile(t *testing.T) {
	if _, err := Chaos(1, "nope"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// TestReportsInvariantToPooling pins the memory layer's central property:
// buffer recycling (internal/mem and the typed FAPI/packet free lists) only
// changes allocator traffic, never results. Every report — and the
// serialized event trace — must be byte-identical between pooling on and
// the SLINGSHOT_POOL=off escape hatch, or a recycle point is releasing a
// buffer something still reads.
func TestReportsInvariantToPooling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full experiment runs at two pooling modes")
	}
	cases := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig8", func() (string, error) { return RunExperiment("fig8", 0.5) }},
		{"chaos", func() (string, error) { return Chaos(5, "light") }},
		{"sec82", func() (string, error) { return RunExperiment("sec82", 0.5) }},
		{"chaos-trace", func() (string, error) {
			_, tr, err := ChaosTraced(5, "light")
			return tr, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prev := mem.SetEnabled(true)
			defer mem.SetEnabled(prev)
			pooled, pooledErr := tc.run()
			mem.SetEnabled(false)
			bare, bareErr := tc.run()
			if (pooledErr == nil) != (bareErr == nil) {
				t.Fatalf("error mismatch: pooling on %v, off %v", pooledErr, bareErr)
			}
			if pooled != bare {
				t.Fatalf("report differs between pooling on and SLINGSHOT_POOL=off:\n--- pooled ---\n%s\n--- off ---\n%s", pooled, bare)
			}
		})
	}
}

// TestReportsInvariantToWorkerCount pins the parallel pipeline's central
// property: the worker pool only changes wall-clock time, never results.
// Every report must be byte-identical between the strictly sequential
// schedule (workers=1, the SLINGSHOT_WORKERS=1 escape hatch) and a
// multi-worker pool, regardless of how the OS schedules the workers.
func TestReportsInvariantToWorkerCount(t *testing.T) {
	if testing.Short() {
		t.Skip("slow: full experiment runs at two worker counts")
	}
	cases := []struct {
		name string
		run  func() (string, error)
	}{
		{"fig8", func() (string, error) { return RunExperiment("fig8", 0.5) }},
		{"chaos", func() (string, error) { return Chaos(5, "light") }},
		{"sec82", func() (string, error) { return RunExperiment("sec82", 0.5) }},
		// The serialized event trace (not just the report) must also be
		// byte-identical: emission happens only on the event-loop goroutine,
		// so worker-pool width cannot reorder or drop events.
		{"chaos-trace", func() (string, error) {
			_, tr, err := ChaosTraced(5, "light")
			return tr, err
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prev := par.SetWorkers(1)
			defer par.SetWorkers(prev)
			seq, seqErr := tc.run()
			par.SetWorkers(4)
			parOut, parErr := tc.run()
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("error mismatch: workers=1 %v, workers=4 %v", seqErr, parErr)
			}
			if seq != parOut {
				t.Fatalf("report differs between workers=1 and workers=4:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", seq, parOut)
			}
		})
	}
}
