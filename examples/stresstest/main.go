// Stresstest: hammer the deployment with migration storms (§8.4) to show
// that discarding PHY soft state at every migration does not break
// connectivity — losing HARQ buffers and SNR filters looks like routine
// wireless noise to the rest of the stack.
//
//	go run ./examples/stresstest
package main

import (
	"fmt"
	"time"

	"slingshot"
)

func main() {
	for _, perSecond := range []int{1, 10, 20} {
		result := storm(perSecond, 10*time.Second)
		fmt.Println(result)
	}
	fmt.Println("\nEvery migration discards the old PHY's HARQ soft buffers and")
	fmt.Println("SNR filters; MAC retransmissions and the SNR filter's quick")
	fmt.Println("reconvergence absorb it, exactly as §4 of the paper argues.")
}

func storm(perSecond int, dur time.Duration) string {
	d := slingshot.New(slingshot.Options{
		Seed: uint64(100 + perSecond),
		UEs:  []slingshot.UE{{ID: 1, Name: "ue", SNRdB: 24}},
	})
	var delivered int
	d.OnUplink(func(ue uint16, pkt []byte) { delivered++ })
	d.Start()

	period := time.Second / time.Duration(perSecond)
	next := period
	var sent int
	for t := time.Duration(0); t < dur; t += 2 * time.Millisecond {
		d.RunFor(2 * time.Millisecond)
		d.SendUplink(1, make([]byte, 500))
		sent++
		if t >= next {
			if err := d.Migrate(); err != nil {
				panic(err)
			}
			next += period
		}
	}
	d.RunFor(200 * time.Millisecond) // drain
	connected := d.UEConnected(1)
	migrations := d.Migrations()
	d.Stop()
	return fmt.Sprintf(
		"%2d migrations/s over %v: %d migrations executed, %d/%d packets delivered, UE connected: %v",
		perSecond, dur, migrations, delivered, sent, connected)
}
