// Quickstart: bring up a simulated Slingshot vRAN, push packets both
// directions, and watch a PHY failover happen without the device noticing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"time"

	"slingshot"
)

func main() {
	d := slingshot.New(slingshot.Options{
		Seed: 42,
		UEs:  []slingshot.UE{{ID: 1, Name: "my-phone", SNRdB: 25}},
	})

	// Count packets at both ends.
	var uplink, downlink int
	d.OnUplink(func(ue uint16, pkt []byte) { uplink++ })
	d.OnDownlink(1, func(pkt []byte) { downlink++ })

	d.Start()
	fmt.Printf("cell up on PHY server %d; UE connected: %v\n",
		d.ActivePHYServer(), d.UEConnected(1))

	// Steady traffic: one packet each way every 5 ms of virtual time.
	for i := 0; i < 100; i++ {
		d.RunFor(5 * time.Millisecond)
		d.SendUplink(1, []byte("sensor reading"))
		d.SendDownlink(1, []byte("command"))
	}
	d.RunFor(100 * time.Millisecond)
	fmt.Printf("after 600 ms: uplink=%d downlink=%d packets delivered\n", uplink, downlink)

	// Kill the serving PHY. The in-switch detector notices the missing
	// per-slot heartbeats within ~450 µs and Orion swaps in the hot
	// standby at a TTI boundary.
	before := d.ActivePHYServer()
	d.KillActivePHY()
	d.RunFor(50 * time.Millisecond)
	fmt.Printf("PHY server %d killed -> now serving from server %d (detected in %v)\n",
		before, d.ActivePHYServer(), d.Detections()[0])

	// Traffic keeps flowing; the UE never disconnected.
	for i := 0; i < 100; i++ {
		d.RunFor(5 * time.Millisecond)
		d.SendUplink(1, []byte("sensor reading"))
		d.SendDownlink(1, []byte("command"))
	}
	d.RunFor(100 * time.Millisecond)
	fmt.Printf("after failover: uplink=%d downlink=%d; UE connected: %v\n",
		uplink, downlink, d.UEConnected(1))
	d.Stop()
}
