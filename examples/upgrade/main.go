// Upgrade: deploy a better PHY build with zero downtime (§8.3). The
// secondary PHY runs a stronger FEC decoder (more belief-propagation
// iterations); a planned migration swaps it in mid-traffic and a
// cell-edge device's throughput improves without any outage.
//
//	go run ./examples/upgrade
package main

import (
	"fmt"
	"time"

	"slingshot"
)

func main() {
	d := slingshot.New(slingshot.Options{
		Seed: 11,
		UEs: []slingshot.UE{
			{ID: 1, Name: "cell-edge phone", SNRdB: 3.2}, // struggles on the old decoder
			{ID: 2, Name: "mid-cell laptop", SNRdB: 18},
		},
		PrimaryFECIters:   4,  // old build
		SecondaryFECIters: 12, // upgraded build
	})
	received := map[uint16]int{}
	d.OnUplink(func(ue uint16, pkt []byte) { received[ue]++ })
	d.Start()

	// Both devices push uplink packets every 1 ms (~4.8 Mbps offered each,
	// above the cell-edge device's degraded capacity on the old build).
	pump := func(ms int) {
		for i := 0; i < ms; i++ {
			d.RunFor(1 * time.Millisecond)
			d.SendUplink(1, make([]byte, 600))
			d.SendUplink(2, make([]byte, 600))
		}
		d.RunFor(100 * time.Millisecond) // drain
	}

	fmt.Println("phase 1: old PHY build (4 FEC iterations)")
	pump(2000)
	p1 := map[uint16]int{1: received[1], 2: received[2]}
	fmt.Printf("  cell-edge phone: %d pkts, laptop: %d pkts\n", p1[1], p1[2])

	fmt.Println("upgrading: planned migration to the 12-iteration build...")
	if err := d.Migrate(); err != nil {
		panic(err)
	}
	d.RunFor(10 * time.Millisecond)
	fmt.Printf("  now serving from PHY server %d; migrations executed: %d\n",
		d.ActivePHYServer(), d.Migrations())

	fmt.Println("phase 2: upgraded PHY build")
	pump(2000)
	ph2 := map[uint16]int{1: received[1] - p1[1], 2: received[2] - p1[2]}
	fmt.Printf("  cell-edge phone: %d pkts (%+d vs phase 1), laptop: %d pkts (%+d)\n",
		ph2[1], ph2[1]-p1[1], ph2[2], ph2[2]-p1[2])

	fmt.Printf("\nconnectivity held throughout: phone=%v laptop=%v\n",
		d.UEConnected(1), d.UEConnected(2))
	fmt.Println("the cell-edge device decodes reliably on the upgraded build;")
	fmt.Println("the upgrade cost zero downtime (no maintenance window).")
	d.Stop()
}
