// Multicell: two cells with crossed primary/secondary placement — the
// deployment shape the paper intends (§8: "Slingshot will co-locate
// primary and secondary PHYs for different RUs within PHY processes",
// no dedicated standby servers). A server crash fails over only the
// cells whose primary lived there.
//
//	go run ./examples/multicell
//
// This example uses the internal/core API directly (the root slingshot
// package wraps the single-cell case).
package main

import (
	"fmt"

	"slingshot/internal/core"
	"slingshot/internal/sim"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.UEs = []core.UESpec{{ID: 1, Name: "cell0-phone", MeanSNRdB: 24}}
	cfg.ExtraCells = []core.CellSpec{{
		Cell: 1, Seed: 0xBEEF,
		Primary:   cfg.SecondaryServer, // crossed placement
		Secondary: cfg.PrimaryServer,
		UEs:       []core.UESpec{{ID: 2, Name: "cell1-phone", MeanSNRdB: 24}},
	}}

	d := core.NewSlingshot(cfg)
	received := map[uint16]int{}
	d.OnUplink(func(ue uint16, pkt []byte) { received[ue]++ })
	d.Start()

	show := func(label string) {
		fmt.Printf("%-28s cell0 on server %d, cell1 on server %d | pkts: ue1=%d ue2=%d | connected: %v %v\n",
			label, d.ActivePHYServerOf(0), d.ActivePHYServerOf(1),
			received[1], received[2],
			d.UEs[1].Connected(), d.UEs[2].Connected())
	}

	gen := d.Engine.Every(20*sim.Millisecond, 5*sim.Millisecond, "gen", func() {
		d.UEs[1].SendUplink(make([]byte, 400))
		d.UEs[2].SendUplink(make([]byte, 400))
	})
	defer gen()

	d.Run(500 * sim.Millisecond)
	show("steady state:")

	fmt.Printf("\nkilling PHY process on server %d (cell0's primary, cell1's standby)...\n", cfg.PrimaryServer)
	d.KillServer(cfg.PrimaryServer)
	d.Run(1000 * sim.Millisecond)
	show("after crash:")
	fmt.Printf("fronthaul migrations executed by the switch: %d (cell0 only)\n",
		len(d.Switch.MigrationLog))
	d.Stop()

	fmt.Println("\nBoth cells end up primary on the surviving server; cell1 never")
	fmt.Println("migrated — its primary was already there. No UE noticed anything.")
}
