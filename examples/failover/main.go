// Failover: side-by-side comparison of a PHY crash with and without
// Slingshot, reproducing the paper's headline result — the no-Slingshot
// baseline disconnects every UE for ~6 seconds while Slingshot's users
// never notice (§8.1).
//
//	go run ./examples/failover
package main

import (
	"fmt"
	"time"

	"slingshot"
)

// run simulates 10 s with a PHY kill at t=2 s and samples connectivity
// once per second.
func run(baseline bool) []bool {
	d := slingshot.New(slingshot.Options{
		Seed:     7,
		Baseline: baseline,
		UEs:      []slingshot.UE{{ID: 1, Name: "phone", SNRdB: 24}},
	})
	d.Start()
	d.At(2*time.Second, d.KillActivePHY)
	var connected []bool
	for s := 0; s < 10; s++ {
		d.RunFor(time.Second)
		connected = append(connected, d.UEConnected(1))
	}
	d.Stop()
	return connected
}

func main() {
	fmt.Println("PHY killed at t=2s. UE connectivity sampled each second:")
	sling := run(false)
	base := run(true)
	fmt.Printf("%-6s %-22s %s\n", "t(s)", "baseline (hot backup)", "slingshot")
	for s := 0; s < 10; s++ {
		mark := func(ok bool) string {
			if ok {
				return "connected"
			}
			return "DISCONNECTED"
		}
		fmt.Printf("%-6d %-22s %s\n", s+1, mark(base[s]), mark(sling[s]))
	}
	fmt.Println("\nThe baseline reroutes the fronthaul to the backup vRAN but the")
	fmt.Println("backup has no UE context: every device runs the full ~6.2 s")
	fmt.Println("reattach procedure. Slingshot's secondary PHY takes over at a")
	fmt.Println("TTI boundary, so nothing above the PHY notices.")
}
