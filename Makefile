GO ?= go
FUZZTIME ?= 10

.PHONY: build test race vet fuzz soak check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

soak:
	$(GO) test ./internal/chaos -run TestChaosSoak -chaos.seeds 25

fuzz:
	scripts/check.sh $(FUZZTIME)

bench:
	$(GO) test -bench=. -benchmem -run '^$$'

# The full local gate: vet + build + race tests + chaos soak + a short
# fuzz smoke per codec package.
check:
	scripts/check.sh $(FUZZTIME)
