GO ?= go
FUZZTIME ?= 10

.PHONY: build test race vet fuzz soak check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

soak:
	$(GO) test ./internal/chaos -run TestChaosSoak -chaos.seeds 25

fuzz:
	scripts/check.sh $(FUZZTIME)

# Benchmark regression harness: runs every benchmark (-count 5, -benchmem)
# and writes BENCH_<date>.json next to the committed baseline. Compare the
# new file against the baseline before merging perf-sensitive changes.
bench:
	scripts/bench.sh

# The full local gate: vet + build + race tests + chaos soak + a short
# fuzz smoke per codec package.
check:
	scripts/check.sh $(FUZZTIME)
