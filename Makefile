GO ?= go
FUZZTIME ?= 10

.PHONY: build test race vet fuzz soak check bench profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

soak:
	$(GO) test ./internal/chaos -run TestChaosSoak -chaos.seeds 25

fuzz:
	scripts/check.sh $(FUZZTIME)

# Benchmark regression harness: runs every benchmark (-count 5, -benchmem)
# and writes BENCH_<date>.json next to the committed baseline. Compare the
# new file against the baseline before merging perf-sensitive changes
# (scripts/bench.sh --compare <baseline.json> runs + gates in one step).
bench:
	scripts/bench.sh

# CPU and allocation profiles of the end-to-end hot path: one iteration of
# Fig8 (video soak) and Table2 (stress matrix), then the top-10 lines of
# each profile. Artifacts stay in profiles/ for interactive pprof sessions.
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'Fig8Video|Table2Stress' -benchtime 1x \
		-cpuprofile profiles/cpu.pprof -memprofile profiles/mem.pprof \
		-o profiles/slingshot.test .
	@echo "== top-10 CPU =="
	$(GO) tool pprof -top -nodecount=10 profiles/slingshot.test profiles/cpu.pprof
	@echo "== top-10 alloc_space =="
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space \
		profiles/slingshot.test profiles/mem.pprof

# The full local gate: vet + build + race tests + chaos soak + a short
# fuzz smoke per codec package.
check:
	scripts/check.sh $(FUZZTIME)
